// Package rdp implements an RDP-like remote display protocol with the
// behavioral properties the paper attributes to TSE's Remote Display
// Protocol: high-level drawing orders with compact field encodings, many
// orders batched into a single PDU, RLE-compressed bitmap payloads, a
// glyph cache, coalesced input events, and — decisively for animated
// content — a client-side bitmap cache (1.5 MB LRU by default) driven by a
// server-side cache directory, so that repeated bitmaps cross the wire as
// tiny MemBlt ("swap bitmap") orders instead of pixel payloads.
//
// RDP's real wire format is unpublished (the paper notes reverse
// engineering it as ongoing work); this package is a behavioral equivalent
// with documented layouts, not a byte-compatible one.
package rdp

import (
	"fmt"
	"unicode/utf8"

	"thinbench/internal/bitmapcache"
	"thinbench/internal/display"
	"thinbench/internal/proto"
)

// Order types.
const (
	ordOpaqueRect  = 0x01
	ordScrBlt      = 0x02
	ordMemBlt      = 0x03
	ordCacheBitmap = 0x04
	ordCacheGlyph  = 0x05
	ordGlyphIndex  = 0x06
)

// pduHeaderSize models the fixed per-PDU framing cost (TPKT + X.224 + MCS +
// share control headers in real RDP).
const pduHeaderSize = 14

// Input event encodings.
const (
	inKey    = 0x01
	inMouse  = 0x02
	inButton = 0x03
)

// Config parameterizes the protocol endpoints.
type Config struct {
	// CacheBytes is the client bitmap cache capacity (paper: 1.5 MB).
	CacheBytes int64
	// CachePolicy selects LRU (the TSE client) or the loop-aware extension.
	CachePolicy bitmapcache.Policy
	// ScreenW, ScreenH size the client framebuffer.
	ScreenW, ScreenH int
	// MotionSample, when positive, caps mouse-motion events per input PDU:
	// the TSE client samples the pointer rather than forwarding every
	// device report, keeping at most this many evenly-spaced positions
	// (always including the final one). Zero keeps every event.
	MotionSample int
}

// DefaultConfig matches the paper's TSE client.
func DefaultConfig() Config {
	return Config{
		CacheBytes:  bitmapcache.DefaultCapacity,
		CachePolicy: bitmapcache.LRU,
		ScreenW:     display.TypicalScreenW,
		ScreenH:     display.TypicalScreenH,
	}
}

// Server encodes display updates into order PDUs, maintaining the
// authoritative model of the client's bitmap and glyph caches.
type Server struct {
	cfg Config

	cache     *bitmapcache.Cache
	slotOf    map[bitmapcache.Key]uint16
	freeSlots []uint16
	nextSlot  uint16

	glyphIdx  map[rune]uint16
	nextGlyph uint16

	// enc is the scratch tape UpdateScratch unboxes onto before delegating
	// to the tape encoder.
	enc display.OpTape
}

// NewServer builds the application-side endpoint.
func NewServer(cfg Config) *Server {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = bitmapcache.DefaultCapacity
	}
	s := &Server{
		cfg:      cfg,
		cache:    bitmapcache.New(cfg.CacheBytes, cfg.CachePolicy),
		slotOf:   make(map[bitmapcache.Key]uint16),
		glyphIdx: make(map[rune]uint16),
	}
	s.cache.OnEvict = func(k bitmapcache.Key) {
		if slot, ok := s.slotOf[k]; ok {
			delete(s.slotOf, k)
			s.freeSlots = append(s.freeSlots, slot)
		}
	}
	return s
}

// Name implements proto.Server.
func (s *Server) Name() string { return "rdp" }

// ResetSession implements proto.SessionReusable: the server returns to its
// freshly constructed state — empty bitmap cache, virgin slot and glyph
// directories — while keeping every allocation, so a pooled codec's wire
// bytes match a brand-new server's exactly.
func (s *Server) ResetSession() {
	s.cache.Reset()
	clear(s.slotOf)
	s.freeSlots = s.freeSlots[:0]
	s.nextSlot = 0
	clear(s.glyphIdx)
	s.nextGlyph = 0
	s.enc.Reset()
}

// CacheStats exposes the bitmap cache counters (Figure 6's metrics).
func (s *Server) CacheStats() bitmapcache.Stats { return s.cache.Stats() }

// Update implements proto.Server: all operations of one screen update are
// encoded as orders inside a single PDU — the batching that gives RDP its
// small message counts and large average message size.
func (s *Server) Update(ops []display.Op) []proto.Message {
	return s.UpdateScratch(ops, &proto.Scratch{})
}

// UpdateScratch implements proto.ScratchServer by unboxing the op slice
// onto the server's scratch tape and delegating to UpdateTape, so the two
// entry points share one encoder and stay byte-identical by construction.
func (s *Server) UpdateScratch(ops []display.Op, sc *proto.Scratch) []proto.Message {
	if len(ops) == 0 {
		return nil
	}
	s.enc.Reset()
	s.enc.AppendOps(ops)
	return s.UpdateTape(&s.enc, 0, s.enc.Len(), sc)
}

// UpdateTape implements proto.TapeServer: tape entries [from, to) are
// encoded as orders inside a single PDU written into caller-owned scratch.
// This is the steady-state form — no op is boxed, and a warm Scratch makes
// the whole encode allocation-free.
//
//thinlint:hotpath
func (s *Server) UpdateTape(t *display.OpTape, from, to int, sc *proto.Scratch) []proto.Message {
	if to <= from {
		return nil
	}
	w := proto.WriterOver(sc.Buf)
	w.Zero(pduHeaderSize)
	orders := 0
	for i := from; i < to; i++ {
		switch t.Kind(i) {
		case display.KindFill:
			r, color := t.FillAt(i)
			w.U8(ordOpaqueRect)
			w.I16(int16(r.X)).I16(int16(r.Y))
			w.U16(uint16(r.W)).U16(uint16(r.H))
			w.U8(color)
			orders++
		case display.KindCopy:
			src, dx, dy := t.CopyAt(i)
			w.U8(ordScrBlt)
			w.I16(int16(src.X)).I16(int16(src.Y))
			w.U16(uint16(src.W)).U16(uint16(src.H))
			w.I16(int16(dx)).I16(int16(dy))
			orders++
		case display.KindBlit:
			x, y, img := t.BlitAt(i)
			orders += s.encodeBitmap(&w, x, y, img)
		case display.KindText:
			x, y, text, color := t.TextAt(i)
			orders += s.encodeText(&w, x, y, text, color)
		}
	}
	b := w.Bytes()
	sc.Buf = b
	// Patch the PDU header: total length and order count.
	b[0] = byte(len(b))
	b[1] = byte(len(b) >> 8)
	b[2] = 0x02 // PDUTYPE_DATA / update
	b[4] = byte(orders)
	b[5] = byte(orders >> 8)
	sc.Msgs = append(sc.Msgs[:0], proto.Message{Channel: proto.Display, Kind: "UpdatePDU", Payload: b})
	return sc.Msgs
}

// encodeBitmap consults the cache directory: a hit costs one 11-byte
// MemBlt; a miss ships the RLE-compressed pixels in a CacheBitmap order,
// then draws with MemBlt.
func (s *Server) encodeBitmap(w *proto.Writer, x, y int, img *display.Bitmap) int {
	key := bitmapcache.Key(img.Hash())
	orders := 0
	if !s.cache.Fetch(key, int64(img.Bytes())) {
		// Miss. If the content is cacheable (it fits), assign a slot and
		// ship it as a cache fill; oversized content ships as a one-shot
		// (slot 0xFFFF means "draw immediately, do not retain").
		slot := uint16(0xFFFF)
		if s.cache.Contains(key) {
			slot = s.allocSlot(key)
		}
		enc := rleEncode(img.Pix)
		w.U8(ordCacheBitmap)
		w.U16(slot)
		w.U16(uint16(img.W)).U16(uint16(img.H))
		w.U32(uint32(len(enc)))
		w.Raw(enc)
		orders++
		if slot == 0xFFFF {
			// One-shot draw carries coordinates in a MemBlt against the
			// ephemeral slot.
			w.U8(ordMemBlt).U16(slot)
			w.I16(int16(x)).I16(int16(y))
			w.U16(uint16(img.W)).U16(uint16(img.H))
			return orders + 1
		}
	}
	slot, ok := s.slotOf[key]
	if !ok {
		slot = s.allocSlot(key)
	}
	w.U8(ordMemBlt).U16(slot)
	w.I16(int16(x)).I16(int16(y))
	w.U16(uint16(img.W)).U16(uint16(img.H))
	return orders + 1
}

func (s *Server) allocSlot(key bitmapcache.Key) uint16 {
	if slot, ok := s.slotOf[key]; ok {
		return slot
	}
	var slot uint16
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	} else {
		slot = s.nextSlot
		s.nextSlot++
		if s.nextSlot == 0xFFFF {
			// Slot space exhausted; recycle from zero. With a byte-capacity
			// cache this cannot collide with a live slot in practice.
			s.nextSlot = 0
		}
	}
	s.slotOf[key] = slot
	return slot
}

// encodeText caches glyphs on first use (13 bytes of 1-bpp rows each),
// then draws with compact glyph-index orders. The UTF-8 byte walk yields
// the same U+FFFD replacements a range loop over the string would, so no
// rune slice is materialized; the glyph count field is a byte, so the text
// caps at 255 runes as before.
func (s *Server) encodeText(w *proto.Writer, x, y int, text []byte, color byte) int {
	orders := 0
	n := display.CountRunes(text, 255)
	i := 0
	for off := 0; off < len(text) && i < n; i++ {
		r, size := utf8.DecodeRune(text[off:])
		off += size
		if _, ok := s.glyphIdx[r]; ok {
			continue
		}
		idx := s.nextGlyph
		s.nextGlyph++
		s.glyphIdx[r] = idx
		w.U8(ordCacheGlyph)
		w.U16(idx)
		w.U32(uint32(r))
		// Each 8-pixel glyph row packs into one byte.
		for yy := 0; yy < display.GlyphH; yy++ {
			w.U8(display.GlyphRowBits(r, yy))
		}
		orders++
	}
	w.U8(ordGlyphIndex)
	w.I16(int16(x)).I16(int16(y))
	w.U8(color)
	w.U8(uint8(n))
	i = 0
	for off := 0; off < len(text) && i < n; i++ {
		r, size := utf8.DecodeRune(text[off:])
		off += size
		w.U16(s.glyphIdx[r])
	}
	return orders + 1
}

// DecodeInput implements proto.Server.
func (s *Server) DecodeInput(m proto.Message) ([]display.InputEvent, error) {
	if m.Channel != proto.Input {
		return nil, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel)
	}
	r := proto.NewReader(m.Payload)
	r.Skip(pduHeaderSize)
	n := int(r.U16())
	events := make([]display.InputEvent, 0, n)
	for i := 0; i < n; i++ {
		switch kind := r.U8(); kind {
		case inKey:
			flags := r.U8()
			code := r.U16()
			events = append(events, display.KeyEvent{Down: flags&1 != 0, Code: code})
		case inMouse:
			x, y := r.I16(), r.I16()
			events = append(events, display.MouseMove{X: int(x), Y: int(y)})
		case inButton:
			flags := r.U8()
			btn := r.U8()
			events = append(events, display.MouseButton{Down: flags&1 != 0, Button: btn})
		default:
			return nil, fmt.Errorf("%w: unknown input kind %d", proto.ErrBadMessage, kind)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ValidateInput implements proto.InputValidator: the structural walk of
// DecodeInput without materializing events. The two must accept and
// reject identical messages.
//
//thinlint:hotpath
func (s *Server) ValidateInput(m proto.Message) (int, error) {
	if m.Channel != proto.Input {
		return 0, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel) //thinlint:allow hotpath error path: runs only on a malformed input PDU, never in steady state
	}
	r := proto.NewReader(m.Payload)
	r.Skip(pduHeaderSize)
	n := int(r.U16())
	for i := 0; i < n; i++ {
		switch kind := r.U8(); kind {
		case inKey:
			r.Skip(3)
		case inMouse:
			r.Skip(4)
		case inButton:
			r.Skip(2)
		default:
			return 0, fmt.Errorf("%w: unknown input kind %d", proto.ErrBadMessage, kind) //thinlint:allow hotpath error path: runs only on a malformed input PDU, never in steady state
		}
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

// setupBytesTotal sums SetupMessages once at package init: a churning
// session pool calls SetupBytes on every admission, and rebuilding the
// whole negotiation exchange each time dominated login allocations.
var setupBytesTotal = func() int {
	total := 0
	for _, m := range SetupMessages() {
		total += m.Size()
	}
	return total
}()

// SetupBytes implements proto.Server.
func (s *Server) SetupBytes() int { return setupBytesTotal }

// SetupMessages builds the session negotiation exchange. Component sizes
// follow the TSE connection sequence: transport connect, basic settings
// exchange, licensing, capability sets, and — the bulk — the client's
// persistent bitmap cache key list and font/glyph negotiation. The total
// matches the paper's measured 45,328 bytes for TSE session setup.
func SetupMessages() []proto.Message {
	block := func(kind string, ch proto.Channel, n int) proto.Message {
		w := proto.NewWriter(n)
		w.U16(uint16(n)).U8(0x01).U8(0)
		w.Zero(n - 4)
		return proto.Message{Channel: ch, Kind: kind, Payload: w.Bytes()}
	}
	return []proto.Message{
		block("X224Connect", proto.Input, 19),
		block("X224Confirm", proto.Display, 11),
		block("MCSConnectInitial", proto.Input, 412),
		block("MCSConnectResponse", proto.Display, 333),
		block("SecurityExchange", proto.Input, 280),
		block("LicenseRequest", proto.Display, 2515),
		block("LicenseResponse", proto.Input, 1533),
		block("DemandActive+Caps", proto.Display, 1214),
		block("ConfirmActive+Caps", proto.Input, 1093),
		block("PersistentKeyList", proto.Input, 23330),
		block("FontList", proto.Input, 8012),
		block("FontMap", proto.Display, 6233),
		block("Synchronize+Control", proto.Display, 343),
	}
}

// Client decodes order PDUs, mirroring the server's cache protocol.
type Client struct {
	cfg    Config
	fb     *display.Framebuffer
	slots  map[uint16]*display.Bitmap
	glyphs map[uint16]*display.Bitmap
}

// NewClient builds the terminal-side endpoint.
func NewClient(cfg Config) *Client {
	return &Client{
		cfg:    cfg,
		fb:     display.NewFramebuffer(cfg.ScreenW, cfg.ScreenH),
		slots:  make(map[uint16]*display.Bitmap),
		glyphs: make(map[uint16]*display.Bitmap),
	}
}

// Name implements proto.Client.
func (c *Client) Name() string { return "rdp" }

// ResetSession implements proto.SessionReusable: the client returns to its
// freshly constructed state — cleared screen, empty bitmap and glyph slot
// stores — retaining the framebuffer and map allocations.
func (c *Client) ResetSession() {
	c.fb.Reset()
	clear(c.slots)
	clear(c.glyphs)
}

// Framebuffer implements proto.Client.
func (c *Client) Framebuffer() *display.Framebuffer { return c.fb }

// CachedBitmaps reports how many bitmap slots the client holds.
func (c *Client) CachedBitmaps() int { return len(c.slots) }

// Apply implements proto.Client.
func (c *Client) Apply(m proto.Message) error {
	if m.Channel != proto.Display {
		return fmt.Errorf("%w: display apply of %v message", proto.ErrBadMessage, m.Channel)
	}
	r := proto.NewReader(m.Payload)
	r.Skip(2) // length
	r.Skip(2) // type + pad
	n := int(r.U16())
	r.Skip(pduHeaderSize - 6)
	for i := 0; i < n; i++ {
		if err := c.applyOrder(r); err != nil {
			return err
		}
	}
	return r.Err()
}

func (c *Client) applyOrder(r *proto.Reader) error {
	switch typ := r.U8(); typ {
	case ordOpaqueRect:
		x, y := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		color := r.U8()
		if r.Err() != nil {
			return r.Err()
		}
		c.fb.Apply(display.FillRect{Rect: display.Rect{X: int(x), Y: int(y), W: int(w), H: int(h)}, Color: color})
	case ordScrBlt:
		sx, sy := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		dx, dy := r.I16(), r.I16()
		if r.Err() != nil {
			return r.Err()
		}
		c.fb.Apply(display.CopyArea{Src: display.Rect{X: int(sx), Y: int(sy), W: int(w), H: int(h)}, DstX: int(dx), DstY: int(dy)})
	case ordCacheBitmap:
		slot := r.U16()
		w, h := r.U16(), r.U16()
		n := int(r.U32())
		enc := r.Raw(n)
		if r.Err() != nil {
			return r.Err()
		}
		pix, err := rleDecode(enc, int(w)*int(h))
		if err != nil {
			return err
		}
		img := display.NewBitmap(int(w), int(h))
		copy(img.Pix, pix)
		c.slots[slot] = img
	case ordMemBlt:
		slot := r.U16()
		x, y := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		if r.Err() != nil {
			return r.Err()
		}
		img, ok := c.slots[slot]
		if !ok {
			return fmt.Errorf("%w: MemBlt of unknown slot %d", proto.ErrBadMessage, slot)
		}
		if img.W != int(w) || img.H != int(h) {
			return fmt.Errorf("%w: MemBlt size %dx%d vs cached %dx%d", proto.ErrBadMessage, w, h, img.W, img.H)
		}
		c.fb.Apply(display.PutBitmap{X: int(x), Y: int(y), Img: img})
		if slot == 0xFFFF {
			delete(c.slots, slot) // one-shot: do not retain
		}
	case ordCacheGlyph:
		idx := r.U16()
		r.U32() // rune, informational
		g := display.NewBitmap(display.GlyphW, display.GlyphH)
		for y := 0; y < display.GlyphH; y++ {
			row := r.U8()
			for x := 0; x < display.GlyphW; x++ {
				if row>>uint(x)&1 == 1 {
					g.Set(x, y, 1)
				}
			}
		}
		if r.Err() != nil {
			return r.Err()
		}
		c.glyphs[idx] = g
	case ordGlyphIndex:
		x, y := r.I16(), r.I16()
		color := r.U8()
		n := int(r.U8())
		cx := int(x)
		for i := 0; i < n; i++ {
			idx := r.U16()
			g, ok := c.glyphs[idx]
			if !ok {
				return fmt.Errorf("%w: glyph index %d unknown", proto.ErrBadMessage, idx)
			}
			for gy := 0; gy < g.H; gy++ {
				for gx := 0; gx < g.W; gx++ {
					if g.At(gx, gy) != 0 {
						c.fb.Set(cx+gx, int(y)+gy, color)
					}
				}
			}
			cx += display.GlyphW
		}
		if r.Err() != nil {
			return r.Err()
		}
	default:
		return fmt.Errorf("%w: unknown order type %d", proto.ErrBadMessage, typ)
	}
	return nil
}

// EncodeInput implements proto.Client: all events gathered during one
// client flush interval are coalesced into a single input PDU with compact
// per-event encodings — the behavior behind RDP's 16x input byte advantage
// over X in the paper's workload table.
func (c *Client) EncodeInput(events []display.InputEvent) []proto.Message {
	return c.EncodeInputScratch(events, &proto.Scratch{})
}

// EncodeInputScratch implements proto.ScratchClient: EncodeInput into
// caller-owned scratch, the zero-allocation steady-state form.
//
//thinlint:hotpath
func (c *Client) EncodeInputScratch(events []display.InputEvent, sc *proto.Scratch) []proto.Message {
	if len(events) == 0 {
		return nil
	}
	events = sampleMotion(events, c.cfg.MotionSample)
	w := proto.WriterOver(sc.Buf)
	w.Zero(pduHeaderSize)
	w.U16(uint16(len(events)))
	for _, ev := range events {
		switch e := ev.(type) {
		case display.KeyEvent:
			flags := uint8(0)
			if e.Down {
				flags = 1
			}
			w.U8(inKey).U8(flags).U16(e.Code)
		case display.MouseMove:
			w.U8(inMouse).I16(int16(e.X)).I16(int16(e.Y))
		case display.MouseButton:
			flags := uint8(0)
			if e.Down {
				flags = 1
			}
			w.U8(inButton).U8(flags).U8(e.Button)
		default:
			panic(fmt.Sprintf("rdp: unsupported input event %T", ev))
		}
	}
	b := w.Bytes()
	sc.Buf = b
	b[0] = byte(len(b))
	b[1] = byte(len(b) >> 8)
	b[2] = 0x03 // PDUTYPE_INPUT
	sc.Msgs = append(sc.Msgs[:0], proto.Message{Channel: proto.Input, Kind: "InputPDU", Payload: b})
	return sc.Msgs
}

// Compile-time interface conformance.
var (
	_ proto.Server         = (*Server)(nil)
	_ proto.Client         = (*Client)(nil)
	_ proto.ScratchServer  = (*Server)(nil)
	_ proto.TapeServer     = (*Server)(nil)
	_ proto.ScratchClient  = (*Client)(nil)
	_ proto.InputValidator = (*Server)(nil)
)

// sampleMotion decimates mouse-motion events down to at most max samples,
// evenly spaced and always retaining the final position; non-motion events
// pass through untouched in order.
func sampleMotion(events []display.InputEvent, max int) []display.InputEvent {
	if max <= 0 {
		return events
	}
	motions := 0
	for _, ev := range events {
		if _, ok := ev.(display.MouseMove); ok {
			motions++
		}
	}
	if motions <= max {
		return events
	}
	out := make([]display.InputEvent, 0, len(events)-motions+max)
	kept, seen := 0, 0
	for _, ev := range events {
		if _, ok := ev.(display.MouseMove); !ok {
			out = append(out, ev)
			continue
		}
		seen++
		// Keep the sample when crossing each of the max evenly spaced
		// thresholds; the final motion always crosses the last one.
		if seen*max >= (kept+1)*motions {
			out = append(out, ev)
			kept++
		}
	}
	return out
}
