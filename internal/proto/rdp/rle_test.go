package rdp

import (
	"bytes"
	"testing"
	"testing/quick"

	"thinbench/internal/display"
)

func TestRLERoundTripBasics(t *testing.T) {
	cases := [][]byte{
		{},
		{1},
		{1, 1, 1, 1, 1},
		{1, 2, 3, 4, 5},
		{0, 0, 0, 7, 7, 7, 7, 1, 2, 3},
		bytes.Repeat([]byte{9}, 1000),
		// Regression: a literal stretch longer than the 128-literal control
		// byte limit (alternating bytes defeat run detection entirely).
		bytes.Repeat([]byte{1, 2}, 300),
	}
	for _, in := range cases {
		enc := rleEncode(in)
		out, err := rleDecode(enc, len(in))
		if err != nil {
			t.Fatalf("decode(%v): %v", in, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("round trip: got %v, want %v", out, in)
		}
	}
}

func TestRLECompressesFlatContent(t *testing.T) {
	flat := display.SyntheticFrame(1, 0, 120, 90) // blocky UI-like content
	enc := rleEncode(flat.Pix)
	if len(enc) >= len(flat.Pix)/2 {
		t.Fatalf("RLE on flat content: %d -> %d, want at least 2x", len(flat.Pix), len(enc))
	}
}

func TestRLEBarelyExpandsPhotoContent(t *testing.T) {
	photo := display.SyntheticPhoto(1, 0, 120, 90)
	enc := rleEncode(photo.Pix)
	// Worst case literal overhead is 1 byte per 128.
	if len(enc) > len(photo.Pix)+len(photo.Pix)/64 {
		t.Fatalf("RLE expanded photo content too much: %d -> %d", len(photo.Pix), len(enc))
	}
}

func TestRLEDecodeErrors(t *testing.T) {
	if _, err := rleDecode([]byte{5}, 6); err == nil {
		t.Fatal("truncated run accepted")
	}
	if _, err := rleDecode([]byte{0x85, 1, 2}, 6); err == nil {
		t.Fatal("truncated literals accepted")
	}
	if _, err := rleDecode([]byte{0, 1}, 5); err == nil {
		t.Fatal("wrong decoded length accepted")
	}
}

func TestRLERoundTripProperty(t *testing.T) {
	f := func(in []byte) bool {
		enc := rleEncode(in)
		out, err := rleDecode(enc, len(in))
		return err == nil && bytes.Equal(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotRecycling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 30000 // room for ~3 of the 100x80 test bitmaps
	srv := NewServer(cfg)
	cli := NewClient(cfg)
	// Push 10 distinct bitmaps through; eviction must recycle slots and the
	// client must keep rendering correctly.
	for i := 0; i < 10; i++ {
		img := display.SyntheticPhoto(uint64(i), i, 100, 80)
		for _, m := range srv.Update([]display.Op{display.PutBitmap{X: 0, Y: 0, Img: img}}) {
			if err := cli.Apply(m); err != nil {
				t.Fatalf("bitmap %d: %v", i, err)
			}
		}
		want := display.NewFramebuffer(cfg.ScreenW, cfg.ScreenH)
		want.Apply(display.PutBitmap{X: 0, Y: 0, Img: img})
		if !cli.Framebuffer().Equal(want.Bitmap) {
			t.Fatalf("bitmap %d: pixels diverged", i)
		}
	}
	if stats := srv.CacheStats(); stats.Evictions == 0 {
		t.Fatal("no evictions despite over-capacity stream")
	}
}
