package rdp

import (
	"fmt"

	"thinbench/internal/proto"
)

// RLE8 is the era-appropriate run-length bitmap codec: RDP compressed
// bitmap payloads with an RLE family long before any general-purpose
// compression was negotiated. Flat UI content (window bodies, menus,
// toolbars) compresses extremely well; photographic animation frames
// barely compress at all, which is why the bitmap *cache*, not the codec,
// is what tames animations.
//
// Format: a control byte C, then
//
//	C <= 0x7F: a run of C+1 copies of the next byte
//	C >= 0x80: C-0x7F literal bytes follow

// rleEncode compresses src.
func rleEncode(src []byte) []byte {
	out := make([]byte, 0, len(src)/4+16)
	i := 0
	for i < len(src) {
		// Measure the run starting at i.
		run := 1
		for i+run < len(src) && src[i+run] == src[i] && run < 128 {
			run++
		}
		if run >= 3 {
			out = append(out, byte(run-1), src[i])
			i += run
			continue
		}
		// Gather literals until the next run of >= 3, capped at the
		// control byte's maximum of 128 literals.
		start := i
		for i < len(src) && i-start < 128 {
			run = 1
			for i+run < len(src) && src[i+run] == src[i] && run < 3 {
				run++
			}
			if run >= 3 {
				break
			}
			i += run
		}
		if i-start > 128 {
			i = start + 128
		}
		n := i - start
		if n == 0 { // at a run boundary immediately
			continue
		}
		out = append(out, byte(0x7F+n))
		out = append(out, src[start:i]...)
	}
	return out
}

// rleDecode expands enc into a buffer of exactly want bytes.
func rleDecode(enc []byte, want int) ([]byte, error) {
	out := make([]byte, 0, want)
	i := 0
	for i < len(enc) {
		c := enc[i]
		i++
		if c <= 0x7F {
			if i >= len(enc) {
				return nil, proto.ErrTruncated
			}
			v := enc[i]
			i++
			for j := 0; j <= int(c); j++ {
				out = append(out, v)
			}
		} else {
			n := int(c) - 0x7F
			if i+n > len(enc) {
				return nil, proto.ErrTruncated
			}
			out = append(out, enc[i:i+n]...)
			i += n
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("%w: RLE decoded %d bytes, want %d", proto.ErrBadMessage, len(out), want)
	}
	return out, nil
}
