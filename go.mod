module thinbench

go 1.24.0
