// Command thinlint runs the thinbench static-analysis suite
// (internal/lint): simdet, hotpath, poolsafe, seedflow, and the directive
// grammar check. See the internal/lint package documentation for what each
// analyzer guards and the //thinlint: directive grammar.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go build -o thinlint ./cmd/thinlint
//	go vet -vettool=$PWD/thinlint ./...
//
// As a convenience, invoking it with package patterns delegates to exactly
// that pipeline:
//
//	thinlint ./...
//
// which re-executes `go vet -vettool=<self> <patterns>` so package loading,
// build caching, and test-file handling are cmd/go's, not ours.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"thinbench/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Protocol probes from cmd/go. -V=full must print a stable,
	// content-derived version token (cmd/go folds the line into its build
	// cache key; "devel" is rejected). -flags must print the tool's flag
	// definitions as JSON; thinlint defines none.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Printf("%s version sha256-%s\n", toolName(), selfHash())
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}

	// Unit-checker mode: cmd/go invokes `thinlint <objdir>/vet.cfg` once
	// per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(lint.RunUnit(args[0]))
	}

	// Standalone mode: delegate to go vet with ourselves as the vettool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "thinlint: %v\n", err)
		os.Exit(1)
	}
	vetArgs := append([]string{"vet", "-vettool=" + self}, args...)
	if len(args) == 0 {
		vetArgs = append(vetArgs, "./...")
	}
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "thinlint: %v\n", err)
		os.Exit(1)
	}
}

func toolName() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// selfHash hashes the tool's own binary, making the -V=full version token
// track the built behavior: rebuild the tool with different analyzer code
// and every cached vet result invalidates.
func selfHash() string {
	self, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(self); err == nil {
			sum := sha256.Sum256(data)
			return fmt.Sprintf("%x", sum[:12])
		}
	}
	// Unreachable in practice; still must not be "devel".
	return "unknown"
}
