// Command prototap is the reproduction's protocol tracing tool, named after
// the pcap-based tracer the paper built for its §6 analysis. It replays a
// workload over a chosen remote display protocol and prints the capture
// accounting: per-channel bytes and messages, packetization, VIP savings,
// per-message-kind breakdown, and an optional Mbps time series.
//
// Usage:
//
//	prototap -workload office -proto rdp
//	prototap -workload webpage -proto rdp -series
//	prototap -workload animation -frames 70 -proto x
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/slim"
	"thinbench/internal/proto/vnc"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
	"thinbench/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "office", "workload: office, webpage, animation")
		prot   = flag.String("proto", "rdp", "protocol: rdp, x, lbx, vnc, slim")
		frames = flag.Int("frames", 10, "animation frame count (animation workload)")
		fps    = flag.Float64("fps", 20, "animation frame rate")
		span   = flag.Int("span", 30, "workload span in seconds (webpage/animation)")
		series = flag.Bool("series", false, "print the Mbps time series")
		kinds  = flag.Bool("kinds", false, "print the per-message-kind breakdown")
	)
	flag.Parse()

	tr, err := buildWorkload(*wl, *frames, *fps, *span)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	srv, cli, opts, err := buildProtocol(*prot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	rec := trace.NewRecorder(simclock.Second)
	if err := workload.Replay(tr, srv, cli, rec, opts); err != nil {
		fmt.Fprintln(os.Stderr, "replay error:", err)
		os.Exit(1)
	}
	fmt.Print(rec.Summary(fmt.Sprintf("%s over %s", *wl, srv.Name())))

	if *kinds {
		ks := rec.KindStats()
		names := make([]string, 0, len(ks))
		for k := range ks {
			names = append(names, k)
		}
		sort.Slice(names, func(i, j int) bool { return ks[names[i]].Bytes > ks[names[j]].Bytes })
		fmt.Println("  by kind:")
		for _, k := range names {
			fmt.Printf("    %-20s %10d bytes %8d messages\n", k, ks[k].Bytes, ks[k].Messages)
		}
	}
	if *series {
		fmt.Println("  Mbps by second:")
		for i, v := range rec.Series().Mbps() {
			fmt.Printf("    %4d  %.4f\n", i, v)
		}
	}
}

func buildWorkload(name string, frames int, fps float64, spanSec int) (workload.Trace, error) {
	span := simclock.Duration(spanSec) * simclock.Second
	switch name {
	case "office":
		return workload.OfficeTrace(workload.DefaultOfficeConfig()), nil
	case "webpage":
		cfg := workload.DefaultWebPageConfig()
		cfg.Span = span
		return workload.WebPageTrace(cfg), nil
	case "animation":
		return workload.AnimationTrace(workload.AnimationConfig{
			Seed: 7, Frames: frames, FPS: fps,
			W: workload.Figure7FrameW, H: workload.Figure7FrameH,
			X: 100, Y: 100, Span: span, Photo: true,
		}), nil
	default:
		return workload.Trace{}, fmt.Errorf("unknown workload %q", name)
	}
}

func buildProtocol(name string) (proto.Server, proto.Client, workload.ReplayOpts, error) {
	switch name {
	case "rdp":
		cfg := rdp.DefaultConfig()
		cfg.MotionSample = 8
		return rdp.NewServer(cfg), rdp.NewClient(cfg), workload.ReplayOpts{
			InputCoalesce:   500 * simclock.Millisecond,
			DisplayCoalesce: simclock.Second,
		}, nil
	case "x":
		return xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH), workload.ReplayOpts{}, nil
	case "lbx":
		return lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig()), workload.ReplayOpts{
			InputCoalesce: 75 * simclock.Millisecond,
		}, nil
	case "vnc":
		return vnc.NewServer(vnc.DefaultConfig()), vnc.NewClient(vnc.DefaultConfig()), workload.ReplayOpts{
			DisplayCoalesce: 100 * simclock.Millisecond,
		}, nil
	case "slim":
		return slim.NewServer(slim.DefaultConfig()), slim.NewClient(slim.DefaultConfig()), workload.ReplayOpts{}, nil
	default:
		return nil, nil, workload.ReplayOpts{}, fmt.Errorf("unknown protocol %q", name)
	}
}
