// Command prototap is the reproduction's protocol tracing tool, named after
// the pcap-based tracer the paper built for its §6 analysis. It replays a
// workload over a chosen remote display protocol and prints the capture
// accounting: per-channel bytes and messages, packetization, VIP savings,
// per-message-kind breakdown, and an optional Mbps time series.
//
// Usage:
//
//	prototap -workload office -proto rdp
//	prototap -workload webpage -proto rdp -series
//	prototap -workload animation -frames 70 -proto x
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"thinbench/internal/proto/protos"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
	"thinbench/internal/workload"
)

// tapConfig is one capture request, separated from flag parsing so tests
// can pin the tool's output.
type tapConfig struct {
	workload string
	proto    string
	frames   int
	fps      float64
	spanSec  int
	series   bool
	kinds    bool
}

func main() {
	var cfg tapConfig
	flag.StringVar(&cfg.workload, "workload", "office", "workload: office, webpage, animation")
	flag.StringVar(&cfg.proto, "proto", "rdp", "protocol: rdp, x, lbx, vnc, slim")
	flag.IntVar(&cfg.frames, "frames", 10, "animation frame count (animation workload)")
	flag.Float64Var(&cfg.fps, "fps", 20, "animation frame rate")
	flag.IntVar(&cfg.spanSec, "span", 30, "workload span in seconds (webpage/animation)")
	flag.BoolVar(&cfg.series, "series", false, "print the Mbps time series")
	flag.BoolVar(&cfg.kinds, "kinds", false, "print the per-message-kind breakdown")
	flag.Parse()

	if err := tap(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// tap replays the workload through the protocol pair and writes the
// capture accounting. Output is deterministic in the configuration.
func tap(cfg tapConfig, w io.Writer) error {
	tr, err := buildWorkload(cfg.workload, cfg.frames, cfg.fps, cfg.spanSec)
	if err != nil {
		return err
	}
	srv, cli, popts, err := protos.New(cfg.proto)
	if err != nil {
		return err
	}
	opts := workload.ReplayOpts{
		InputCoalesce:   popts.InputCoalesce,
		DisplayCoalesce: popts.DisplayCoalesce,
	}
	rec := trace.NewRecorder(simclock.Second)
	if err := workload.Replay(tr, srv, cli, rec, opts); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	fmt.Fprint(w, rec.Summary(fmt.Sprintf("%s over %s", cfg.workload, srv.Name())))

	if cfg.kinds {
		ks := rec.KindStats()
		names := make([]string, 0, len(ks))
		for k := range ks {
			names = append(names, k)
		}
		sort.Slice(names, func(i, j int) bool {
			if ks[names[i]].Bytes != ks[names[j]].Bytes {
				return ks[names[i]].Bytes > ks[names[j]].Bytes
			}
			return names[i] < names[j]
		})
		fmt.Fprintln(w, "  by kind:")
		for _, k := range names {
			fmt.Fprintf(w, "    %-20s %10d bytes %8d messages\n", k, ks[k].Bytes, ks[k].Messages)
		}
	}
	if cfg.series {
		fmt.Fprintln(w, "  Mbps by second:")
		for i, v := range rec.Series().Mbps() {
			fmt.Fprintf(w, "    %4d  %.4f\n", i, v)
		}
	}
	return nil
}

func buildWorkload(name string, frames int, fps float64, spanSec int) (workload.Trace, error) {
	span := simclock.Duration(spanSec) * simclock.Second
	switch name {
	case "office":
		return workload.OfficeTrace(workload.DefaultOfficeConfig()), nil
	case "webpage":
		cfg := workload.DefaultWebPageConfig()
		cfg.Span = span
		return workload.WebPageTrace(cfg), nil
	case "animation":
		return workload.AnimationTrace(workload.AnimationConfig{
			Seed: 7, Frames: frames, FPS: fps,
			W: workload.Figure7FrameW, H: workload.Figure7FrameH,
			X: 100, Y: 100, Span: span, Photo: true,
		}), nil
	default:
		return workload.Trace{}, fmt.Errorf("unknown workload %q", name)
	}
}
