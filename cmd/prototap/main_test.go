package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// TestTapGoldenOutput pins the decoded-trace accounting for one capture:
// a 10-frame animation over RDP with the per-kind breakdown and Mbps
// series. The capture is deterministic in its seed, so any diff is a real
// behavior change in the codec, the recorder, or the workload generator.
func TestTapGoldenOutput(t *testing.T) {
	cfg := tapConfig{
		workload: "animation",
		proto:    "rdp",
		frames:   10,
		fps:      20,
		spanSec:  5,
		series:   true,
		kinds:    true,
	}
	var buf bytes.Buffer
	if err := tap(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "animation_rdp.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("capture accounting diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestTapRejectsUnknownInputs(t *testing.T) {
	if err := tap(tapConfig{workload: "nope", proto: "rdp"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := tap(tapConfig{workload: "office", proto: "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
