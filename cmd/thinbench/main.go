// Command thinbench runs the reproduction's experiments: every table and
// figure of Wong & Seltzer's USENIX 2000 thin-client study, the ablations
// this reproduction adds, and the shared-server contention grid.
//
// Usage:
//
//	thinbench -list                 list experiments
//	thinbench -run fig3             run one experiment
//	thinbench -run all              run everything
//	thinbench -run fig7 -quick      shortened measurement windows
//	thinbench -run fig8 -seed 42    alternate random seed
//	thinbench -run all -parallel 8  run experiments across 8 workers
//	thinbench -run all -json out.json            machine-readable results
//
// Contention mode sweeps user counts over one shared server per data
// point — one clock, one CPU, one memory pool, one link:
//
//	thinbench -run contention
//	thinbench -run contention -users 1..24 -proto rdp,x,lbx -sched rr,nt
//	thinbench -run contention -users 1,4,16 -proto vnc -sched svr4ia -json BENCH_contention.json
//
// Shard mode sweeps total population over a heterogeneous fleet of M
// shared servers per data point, one fleet per placement policy:
//
//	thinbench -run shard
//	thinbench -run shard -shards 3 -policy roundrobin,memaware,lataware -users 6..30
//	thinbench -run shard -shards 5 -policy lataware -users 12,24,48 -json BENCH_shard.json
//
// Churn mode holds one fleet population and sweeps the session turnover
// rate — every departure replaced by a fresh login routed through the
// live placement policy — then kills a machine and measures the failover
// excursion and recovery per policy:
//
//	thinbench -run churn
//	thinbench -run churn -users 22 -churn 0,0.15,0.3 -kill 2 -killat 4
//	thinbench -run churn -users 22 -policy roundrobin,lataware -json BENCH_churn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"thinbench"
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func main() {
	var (
		runID    = flag.String("run", "", "experiment ID to run (fig1..fig9, tab1..tab6, abl1..abl5, cap1, cont1, shard1, 'contention', 'shard', or 'all')")
		list     = flag.Bool("list", false, "list registered experiments")
		quick    = flag.Bool("quick", false, "shorten measurement windows (same shapes, more noise)")
		seed     = flag.Uint64("seed", 1999, "random seed; identical seeds reproduce identical results")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file")

		users  = flag.String("users", "1..16", "contention/shard mode: user counts, 'A..B' (ranges wider than 8 are stepped to ~8 points, endpoints kept) or a comma list probing every count; shard mode reads them as total fleet populations")
		protos = flag.String("proto", "rdp,x,lbx", "contention mode: comma list of protocols (rdp,x,lbx,vnc,slim)")
		scheds = flag.String("sched", "rr,nt", "contention mode: comma list of schedulers (rr,nt,svr4ia)")

		shards   = flag.Int("shards", 3, "shard/churn mode: machine count of the heterogeneous fleet (hardware classes cycle big/base/weak)")
		policies = flag.String("policy", "roundrobin,memaware,lataware", "shard/churn mode: comma list of placement policies")

		churnRates = flag.String("churn", "0,0.15,0.3", "churn mode: comma list of per-session logout rates (1/s); each rate is one fleet run per policy")
		killShard  = flag.Int("kill", 2, "churn mode: machine to kill mid-span for the failover section (-1 disables)")
		killAtSec  = flag.Float64("killat", 4, "churn mode: kill time in seconds")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range thinbench.Experiments() {
			fmt.Printf("  %-5s %s\n        paper: %s\n", e.ID, e.Title, e.Paper)
		}
		fmt.Println("  contention")
		fmt.Println("        latency-vs-users grid on one shared server per point; see -users, -proto, -sched")
		fmt.Println("  shard")
		fmt.Println("        fleet-level p95 vs total users across M shared servers per placement policy; see -shards, -policy, -users")
		fmt.Println("  churn")
		fmt.Println("        fleet p95 vs session turnover rate plus a machine-kill failover, per placement policy; see -churn, -kill, -killat")
		if *runID == "" && !*list {
			fmt.Println("\nrun one with: thinbench -run <id>   (or -run all, -run contention, -run shard)")
		}
		return
	}

	if *runID == "contention" {
		if err := runContention(*users, *protos, *scheds, *quick, *seed, *parallel, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	if *runID == "shard" {
		if err := runShard(*users, *policies, *shards, *quick, *seed, *parallel, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	if *runID == "churn" {
		// Churn mode holds one population; the range default of -users is
		// a sweep axis, so substitute the canonical churn population when
		// the flag was left untouched.
		churnUsers := *users
		if !flagWasSet("users") {
			churnUsers = "22"
		}
		if err := runChurn(churnUsers, *policies, *churnRates, *shards, *killShard, *killAtSec,
			*quick, *seed, *parallel, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	cfg := thinbench.Config{Seed: *seed, Quick: *quick}
	var results []*thinbench.Result
	var runErr error
	if *runID == "all" {
		results, runErr = thinbench.RunAllParallel(cfg, *parallel)
	} else {
		if *parallel != 0 {
			fmt.Fprintln(os.Stderr, "note: -parallel applies to -run all and -run contention; single experiments run on one worker")
		}
		var r *thinbench.Result
		if r, runErr = thinbench.Run(*runID, cfg); r != nil {
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Println(r.Render())
	}
	if *jsonPath != "" && len(results) > 0 {
		if err := writeJSON(*jsonPath, experimentDoc(results, *seed, *quick)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "error:", runErr)
		os.Exit(1)
	}
}

// contentionDoc is the machine-readable contention result, the repo's
// bench trajectory format (BENCH_contention.json).
type contentionDoc struct {
	Command   string            `json:"command"`
	Seed      uint64            `json:"seed"`
	SpanSec   float64           `json:"span_sec"`
	Users     []int             `json:"users"`
	Scenarios []server.Scenario `json:"scenarios"`
}

func runContention(users, protos, scheds string, quick bool, seed uint64, parallel int, jsonPath string) error {
	counts, err := parseCounts(users)
	if err != nil {
		return err
	}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	if quick {
		base.Span = 3 * simclock.Second
	}
	protoList := splitList(protos)
	schedList := splitList(scheds)
	// An empty axis would legally produce an empty grid; at the CLI that
	// is always a mistyped flag, so fail instead of printing zero rows.
	if len(protoList) == 0 {
		return fmt.Errorf("empty -proto list")
	}
	if len(schedList) == 0 {
		return fmt.Errorf("empty -sched list")
	}
	grid, err := server.Grid(base, protoList, schedList, counts, parallel, seed)
	if err != nil {
		return err
	}
	for _, sc := range grid {
		fmt.Printf("== contention: %s over %s ==\n", sc.Protocol, sc.Scheduler)
		fmt.Printf("  %6s %12s %12s %12s %8s %8s %8s %s\n",
			"users", "mean ms", "p95 ms", "max ms", "cpu", "link", "censored", "paging")
		for _, pt := range sc.Points {
			fmt.Printf("  %6d %12.2f %12.2f %12.2f %7.0f%% %7.0f%% %8d %v\n",
				pt.Users, pt.EchoMeanMs, pt.EchoP95Ms, pt.EchoMaxMs,
				pt.CPUUtilization*100, pt.LinkUtilization*100, pt.Censored, pt.Paging)
		}
		fmt.Println()
	}
	if jsonPath != "" {
		doc := contentionDoc{
			Command: fmt.Sprintf("thinbench -run contention -users %s -proto %s -sched %s -seed %d -quick=%v",
				users, protos, scheds, seed, quick),
			Seed:      seed,
			SpanSec:   base.Span.Seconds(),
			Users:     counts,
			Scenarios: grid,
		}
		return writeJSON(jsonPath, doc)
	}
	return nil
}

// shardDoc is the machine-readable fleet result, the repo's bench
// trajectory format (BENCH_shard.json).
type shardDoc struct {
	Command  string          `json:"command"`
	Seed     uint64          `json:"seed"`
	SpanSec  float64         `json:"span_sec"`
	Machines []shard.Machine `json:"machines"`
	Users    []int           `json:"users"`
	Policies []policySeries  `json:"policies"`
}

type policySeries struct {
	Policy string              `json:"policy"`
	Points []shard.FleetResult `json:"points"`
}

func runShard(users, policies string, machines int, quick bool, seed uint64, parallel int, jsonPath string) error {
	counts, err := parseCounts(users)
	if err != nil {
		return err
	}
	policyList := splitList(policies)
	if len(policyList) == 0 {
		return fmt.Errorf("empty -policy list")
	}
	if machines < 1 {
		return fmt.Errorf("bad -shards count %d (want >= 1)", machines)
	}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	probeSpan := 2 * simclock.Second
	if quick {
		base.Span = 3 * simclock.Second
		probeSpan = simclock.Second
	}
	fleet := shard.DefaultFleet(machines)
	doc := shardDoc{
		Command: fmt.Sprintf("thinbench -run shard -shards %d -policy %s -users %s -seed %d -quick=%v",
			machines, policies, users, seed, quick),
		Seed:     seed,
		SpanSec:  base.Span.Seconds(),
		Machines: fleet,
		Users:    counts,
	}
	for _, policy := range policyList {
		fmt.Printf("== shard: %s placement over %d machines ==\n", policy, machines)
		fmt.Printf("  %6s %12s %12s %14s %8s %-s\n",
			"users", "fleet p50", "fleet p95", "max shard p95", "censored", "placement")
		ps := policySeries{Policy: policy}
		for _, n := range counts {
			fr, err := shard.Run(shard.Config{
				Base:      base,
				Machines:  fleet,
				Users:     n,
				Policy:    policy,
				ProbeSpan: probeSpan,
				Workers:   parallel,
				Seed:      seed,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %6d %10.0f ms %10.0f ms %12.0f ms %8d %v\n",
				fr.Users, fr.EchoP50Ms, fr.EchoP95Ms, fr.MaxShardP95Ms, fr.Censored, fr.Placement)
			ps.Points = append(ps.Points, fr)
		}
		doc.Policies = append(doc.Policies, ps)
		fmt.Println()
	}
	if jsonPath != "" {
		return writeJSON(jsonPath, doc)
	}
	return nil
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// churnDoc is the machine-readable dynamic-fleet result, the repo's bench
// trajectory format (BENCH_churn.json): the turnover grid plus the
// failover runs.
type churnDoc struct {
	Command    string          `json:"command"`
	Seed       uint64          `json:"seed"`
	SpanSec    float64         `json:"span_sec"`
	Machines   []shard.Machine `json:"machines"`
	Users      int             `json:"users"`
	ChurnRates []float64       `json:"churn_rates"`
	Policies   []policySeries  `json:"policies"`
	Failover   []policyFail    `json:"failover,omitempty"`
}

type policyFail struct {
	Policy string            `json:"policy"`
	Result shard.FleetResult `json:"result"`
}

func runChurn(users, policies, churnRates string, machines, killShard int, killAtSec float64,
	quick bool, seed uint64, parallel int, jsonPath string) error {
	counts, err := parseCounts(users)
	if err != nil {
		return err
	}
	if len(counts) != 1 {
		return fmt.Errorf("churn mode holds one population; give a single -users count, not %v", counts)
	}
	n := counts[0]
	var rates []float64
	for _, f := range splitList(churnRates) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r < 0 {
			return fmt.Errorf("bad -churn rate %q", f)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return fmt.Errorf("empty -churn list")
	}
	policyList := splitList(policies)
	if len(policyList) == 0 {
		return fmt.Errorf("empty -policy list")
	}
	if machines < 1 {
		return fmt.Errorf("bad -shards count %d (want >= 1)", machines)
	}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	probeSpan := 2 * simclock.Second
	if quick {
		base.Span = 4 * simclock.Second
		probeSpan = simclock.Second
	}
	killAt := simclock.Duration(killAtSec * 1e6)
	if killShard >= 0 && killAt <= 0 {
		return fmt.Errorf("-killat %g: the failover kill needs a positive time (or -kill -1 to disable)", killAtSec)
	}
	if killShard >= 0 && killAt >= base.Span {
		return fmt.Errorf("-killat %g: the kill must land before the %v span", killAtSec, base.Span)
	}
	fleet := shard.DefaultFleet(machines)
	mk := func(policy string) shard.Config {
		return shard.Config{
			Base:      base,
			Machines:  fleet,
			Users:     n,
			Policy:    policy,
			ProbeSpan: probeSpan,
			Workers:   parallel,
			Seed:      seed,
		}
	}
	doc := churnDoc{
		Command: fmt.Sprintf("thinbench -run churn -shards %d -policy %s -users %d -churn %s -kill %d -killat %g -seed %d -quick=%v",
			machines, policies, n, churnRates, killShard, killAtSec, seed, quick),
		Seed:       seed,
		SpanSec:    base.Span.Seconds(),
		Machines:   fleet,
		Users:      n,
		ChurnRates: rates,
	}
	for _, policy := range policyList {
		fmt.Printf("== churn: %s placement, %d users over %d machines ==\n", policy, n, machines)
		fmt.Printf("  %8s %12s %12s %9s %9s %12s\n",
			"rate/s", "fleet p95", "max login", "arrivals", "departs", "censored")
		ps := policySeries{Policy: policy}
		for _, rate := range rates {
			cfg := mk(policy)
			cfg.ChurnRatePerSec = rate
			fr, err := shard.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("  %8.2f %10.0f ms %10.0f ms %9d %9d %12d\n",
				rate, fr.EchoP95Ms, fr.LoginMaxMs, fr.Arrivals, fr.Departures, fr.Censored)
			ps.Points = append(ps.Points, fr)
		}
		doc.Policies = append(doc.Policies, ps)
		fmt.Println()
	}
	if killShard >= 0 {
		fmt.Printf("== failover: kill machine %d at %v ==\n", killShard, killAt)
		for _, policy := range policyList {
			cfg := mk(policy)
			cfg.KillShard = killShard
			cfg.KillAt = killAt
			fr, err := shard.Run(cfg)
			if err != nil {
				return err
			}
			recovery := "never within the run"
			if fr.RecoveryMs >= 0 {
				recovery = fmt.Sprintf("%.0f ms", fr.RecoveryMs)
			}
			fmt.Printf("  %-10s placed %v, displaced %d: p95 pre %4.0f ms, peak %5.0f ms, recovered in %s\n",
				policy, fr.Placement, fr.Shards[killShard].Departures,
				fr.PreKillP95Ms, fr.PeakKillP95Ms, recovery)
			fmt.Printf("             timeline (ms):")
			for _, p := range fr.P95TimelineMs {
				fmt.Printf(" %5.0f", p)
			}
			fmt.Println()
			doc.Failover = append(doc.Failover, policyFail{Policy: policy, Result: fr})
		}
		fmt.Println()
	}
	if jsonPath != "" {
		return writeJSON(jsonPath, doc)
	}
	return nil
}

// experimentDoc projects experiment results into their serializable parts
// (series and notes; tables are terminal renderings).
func experimentDoc(results []*thinbench.Result, seed uint64, quick bool) any {
	type expJSON struct {
		ID     string             `json:"id"`
		Title  string             `json:"title"`
		Series []thinbench.Series `json:"series,omitempty"`
		Notes  []string           `json:"notes,omitempty"`
	}
	out := struct {
		Seed        uint64    `json:"seed"`
		Quick       bool      `json:"quick"`
		Experiments []expJSON `json:"experiments"`
	}{Seed: seed, Quick: quick}
	for _, r := range results {
		out.Experiments = append(out.Experiments, expJSON{ID: r.ID, Title: r.Title, Series: r.Series, Notes: r.Notes})
	}
	return out
}

func writeJSON(path string, doc any) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// parseCounts accepts "A..B" ranges and comma lists of user counts.
func parseCounts(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err1 := strconv.Atoi(strings.TrimSpace(lo))
		b, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad -users range %q (want e.g. 1..16)", s)
		}
		// Wide ranges step so the sweep stays a handful of points per
		// scenario; narrow ranges probe every count.
		step := 1
		if n := b - a + 1; n > 8 {
			step = (n + 7) / 8
		}
		var out []int
		for c := a; c <= b; c += step {
			out = append(out, c)
		}
		if out[len(out)-1] != b {
			out = append(out, b)
		}
		return out, nil
	}
	var out []int
	for _, f := range splitList(s) {
		c, err := strconv.Atoi(f)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -users entry %q", f)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -users list")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
