// Command thinbench runs the reproduction's experiments: every table and
// figure of Wong & Seltzer's USENIX 2000 thin-client study, the ablations
// this reproduction adds, and the shared-server contention grid.
//
// Usage:
//
//	thinbench -list                 list experiments
//	thinbench -run fig3             run one experiment
//	thinbench -run all              run everything
//	thinbench -run fig7 -quick      shortened measurement windows
//	thinbench -run fig8 -seed 42    alternate random seed
//	thinbench -run all -parallel 8  run experiments across 8 workers
//	thinbench -run all -json out.json            machine-readable results
//
// Contention mode sweeps user counts over one shared server per data
// point — one clock, one CPU, one memory pool, one link:
//
//	thinbench -run contention
//	thinbench -run contention -users 1..24 -proto rdp,x,lbx -sched rr,nt
//	thinbench -run contention -users 1,4,16 -proto vnc -sched svr4ia -json BENCH_contention.json
//
// Shard mode sweeps total population over a heterogeneous fleet of M
// shared servers per data point, one fleet per placement policy:
//
//	thinbench -run shard
//	thinbench -run shard -shards 3 -policy roundrobin,memaware,lataware -users 6..30
//	thinbench -run shard -shards 5 -policy lataware -users 12,24,48 -json BENCH_shard.json
//
// Churn mode holds one fleet population and sweeps the session turnover
// rate — every departure replaced by a fresh login routed through the
// live placement policy — then kills a machine and measures the failover
// excursion and recovery per policy:
//
//	thinbench -run churn
//	thinbench -run churn -users 22 -churn 0,0.15,0.3 -kill 2 -killat 4
//	thinbench -run churn -users 22 -policy roundrobin,lataware -json BENCH_churn.json
//
// Schedule mode drives the fleet from a time-varying arrival profile — a
// 9 AM login storm, a lunch dip, shift changes — instead of memoryless
// churn, then kills a machine in the middle of the morning ramp so
// failover is measured under a surge. Profiles are built-ins or @files in
// the schedule text format (see internal/schedule):
//
//	thinbench -run schedule
//	thinbench -run schedule -profile officeday,flat -users 15 -kill 2 -killat 2
//	thinbench -run schedule -profile @myday.profile -policy lataware -json BENCH_schedule.json
//
// Control mode prices the online control plane against the offline
// sizing oracle: ScheduleCapacity sizes one machine for each arrival
// profile's worst slice, then the same overcommitted demand runs open,
// admission-gated, gated-plus-shedding, and autoscaled from standby
// spares — the overprovisioning-versus-queueing trade in one document:
//
//	thinbench -run control
//	thinbench -run control -shards 2 -profile officeday,shiftchange
//	thinbench -run control -users 36 -json BENCH_control.json
//
// Speed mode benchmarks the simulator itself: canonical workloads timed
// for sim-events/sec, wall-clock per simulated user-hour, and allocations
// per event. Event and allocation counts are deterministic (at -parallel
// 1) and golden-diffed in CI; wall-clock numbers are machine-dependent:
//
//	thinbench -run speed
//	thinbench -run speed -parallel 1 -json BENCH_speed.json
//	thinbench -run speed -workload cont1 -cpuprofile cpu.pprof   # profile one loop
//	thinbench -run speed -eventq heap       # reference scheduler, same numbers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"thinbench"
	"thinbench/internal/benchdoc"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func main() {
	var (
		runID    = flag.String("run", "", "experiment ID to run (fig1..fig9, tab1..tab6, abl1..abl5, cap1, cont1, shard1, 'contention', 'shard', 'churn', 'schedule', 'control', 'speed', or 'all')")
		list     = flag.Bool("list", false, "list registered experiments")
		quick    = flag.Bool("quick", false, "shorten measurement windows (same shapes, more noise)")
		seed     = flag.Uint64("seed", 1999, "random seed; identical seeds reproduce identical results")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file")

		users  = flag.String("users", "1..16", "contention/shard mode: user counts, 'A..B' (ranges wider than 8 are stepped to ~8 points, endpoints kept) or a comma list probing every count; shard mode reads them as total fleet populations")
		protos = flag.String("proto", "rdp,x,lbx", "contention mode: comma list of protocols (rdp,x,lbx,vnc,slim)")
		scheds = flag.String("sched", "rr,nt", "contention mode: comma list of schedulers (rr,nt,svr4ia)")

		shards   = flag.Int("shards", 3, "shard/churn/schedule mode: machine count of the heterogeneous fleet (hardware classes cycle big/base/weak)")
		policies = flag.String("policy", "roundrobin,memaware,lataware", "shard/churn/schedule mode: comma list of placement policies")

		churnRates = flag.String("churn", "0,0.15,0.3", "churn mode: comma list of per-session logout rates (1/s); each rate is one fleet run per policy")
		killShard  = flag.Int("kill", 2, "churn/schedule mode: machine to kill mid-span for the failover section (-1 disables)")
		killAtSec  = flag.Float64("killat", 4, "churn/schedule mode: kill time in seconds (schedule mode defaults to 2, inside the morning ramp)")
		profiles   = flag.String("profile", "officeday,flat", "schedule mode: comma list of arrival profiles (flat, officeday, shiftchange, or @file)")

		workload = flag.String("workload", "", "speed mode: run only the named workload (cont1, fleet, officeday, bigfleet); empty runs all")

		eventq     = flag.String("eventq", "", "event queue implementation: calendar (default) or heap; any mode, results are identical either way")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *eventq != "" {
		kind, err := simclock.ParseQueueKind(*eventq)
		exitOn(err)
		simclock.DefaultQueue = kind
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			exitOn(err)
			runtime.GC()
			exitOn(pprof.WriteHeapProfile(f))
			exitOn(f.Close())
		}()
	}

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range thinbench.Experiments() {
			fmt.Printf("  %-5s %s\n        paper: %s\n", e.ID, e.Title, e.Paper)
		}
		fmt.Println("  contention")
		fmt.Println("        latency-vs-users grid on one shared server per point; see -users, -proto, -sched")
		fmt.Println("  shard")
		fmt.Println("        fleet-level p95 vs total users across M shared servers per placement policy; see -shards, -policy, -users")
		fmt.Println("  churn")
		fmt.Println("        fleet p95 vs session turnover rate plus a machine-kill failover, per placement policy; see -churn, -kill, -killat")
		fmt.Println("  schedule")
		fmt.Println("        fleet driven by a time-varying arrival profile (login storm, lunch dip) plus a mid-ramp machine kill; see -profile, -kill, -killat")
		fmt.Println("  control")
		fmt.Println("        online admission/shedding/autoscaling versus the offline sizing oracle, per arrival profile; see -shards, -profile, -users")
		fmt.Println("  speed")
		fmt.Println("        benchmark the simulator itself: events/sec, wall per user-hour, allocs/event on canonical workloads; see -eventq, -cpuprofile, -memprofile")
		if *runID == "" && !*list {
			fmt.Println("\nrun one with: thinbench -run <id>   (or -run all, -run contention, -run shard)")
		}
		return
	}

	switch *runID {
	case "contention":
		doc, err := benchdoc.Contention(*users, *protos, *scheds, *quick, *seed, *parallel)
		exitOn(err)
		printContention(doc)
		writeDoc(*jsonPath, doc)
		return
	case "shard":
		doc, err := benchdoc.Shard(*users, *policies, *shards, *quick, *seed, *parallel)
		exitOn(err)
		printShard(doc)
		writeDoc(*jsonPath, doc)
		return
	case "churn":
		// Churn mode holds one population; the range default of -users is
		// a sweep axis, so substitute the canonical churn population when
		// the flag was left untouched. Quick mode shrinks the span to 4 s,
		// which the default kill time would land exactly on, so re-default
		// it to mid-span.
		churnUsers := *users
		if !flagWasSet("users") {
			churnUsers = "22"
		}
		churnKillAt := *killAtSec
		if !flagWasSet("killat") && *quick {
			churnKillAt = 2
		}
		doc, err := benchdoc.Churn(churnUsers, *policies, *churnRates, *shards, *killShard, churnKillAt,
			*quick, *seed, *parallel)
		exitOn(err)
		printChurn(doc)
		writeDoc(*jsonPath, doc)
		return
	case "schedule":
		// Schedule mode also holds one population, and its kill belongs
		// inside the morning ramp rather than at churn mode's default.
		schedUsers := *users
		if !flagWasSet("users") {
			schedUsers = "15"
		}
		killAt := *killAtSec
		if !flagWasSet("killat") {
			killAt = 2
		}
		doc, err := benchdoc.Schedule(schedUsers, *profiles, *policies, *shards, *killShard, killAt,
			*quick, *seed, *parallel)
		exitOn(err)
		printSchedule(doc)
		writeDoc(*jsonPath, doc)
		return
	case "control":
		// Control mode's -users is the offered demand; 0 (the default
		// here) derives 1.5x each profile's oracle fleet seats, and the
		// fleet defaults to two live machines so the oracle's
		// overprovisioning answer has something to beat.
		demand := 0
		if flagWasSet("users") {
			counts, err := benchdoc.ParseCounts(*users)
			exitOn(err)
			if len(counts) != 1 {
				exitOn(fmt.Errorf("control mode offers one demand; give a single -users count, not %v", counts))
			}
			demand = counts[0]
		}
		ctrlShards := *shards
		if !flagWasSet("shards") {
			ctrlShards = 2
		}
		ctrlProfiles := *profiles
		if !flagWasSet("profile") {
			ctrlProfiles = "officeday,shiftchange"
		}
		doc, err := benchdoc.Control(ctrlProfiles, ctrlShards, demand, *quick, *seed, *parallel)
		exitOn(err)
		printControl(doc)
		writeDoc(*jsonPath, doc)
		return
	case "speed":
		doc, err := benchdoc.Speed(*quick, *seed, *parallel, *workload)
		exitOn(err)
		printSpeed(doc)
		writeDoc(*jsonPath, doc)
		return
	}

	cfg := thinbench.Config{Seed: *seed, Quick: *quick}
	var results []*thinbench.Result
	var runErr error
	if *runID == "all" {
		results, runErr = thinbench.RunAllParallel(cfg, *parallel)
	} else {
		if *parallel != 0 {
			fmt.Fprintln(os.Stderr, "note: -parallel applies to -run all and -run contention; single experiments run on one worker")
		}
		var r *thinbench.Result
		if r, runErr = thinbench.Run(*runID, cfg); r != nil {
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Println(r.Render())
	}
	if *jsonPath != "" && len(results) > 0 {
		if err := writeJSON(*jsonPath, experimentDoc(results, *seed, *quick)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "error:", runErr)
		os.Exit(1)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func writeDoc(path string, doc any) {
	if path == "" {
		return
	}
	exitOn(writeJSON(path, doc))
}

func printContention(doc benchdoc.ContentionDoc) {
	for _, sc := range doc.Scenarios {
		fmt.Printf("== contention: %s over %s ==\n", sc.Protocol, sc.Scheduler)
		fmt.Printf("  %6s %12s %12s %12s %8s %8s %8s %s\n",
			"users", "mean ms", "p95 ms", "max ms", "cpu", "link", "censored", "paging")
		for _, pt := range sc.Points {
			fmt.Printf("  %6d %12.2f %12.2f %12.2f %7.0f%% %7.0f%% %8d %v\n",
				pt.Users, pt.EchoMeanMs, pt.EchoP95Ms, pt.EchoMaxMs,
				pt.CPUUtilization*100, pt.LinkUtilization*100, pt.Censored, pt.Paging)
		}
		fmt.Println()
	}
}

func printShard(doc benchdoc.ShardDoc) {
	for _, ps := range doc.Policies {
		fmt.Printf("== shard: %s placement over %d machines ==\n", ps.Policy, len(doc.Machines))
		fmt.Printf("  %6s %12s %12s %14s %8s %-s\n",
			"users", "fleet p50", "fleet p95", "max shard p95", "censored", "placement")
		for _, fr := range ps.Points {
			fmt.Printf("  %6d %10.0f ms %10.0f ms %12.0f ms %8d %v\n",
				fr.Users, fr.EchoP50Ms, fr.EchoP95Ms, fr.MaxShardP95Ms, fr.Censored, fr.Placement)
		}
		fmt.Println()
	}
}

func printChurn(doc benchdoc.ChurnDoc) {
	for _, ps := range doc.Policies {
		fmt.Printf("== churn: %s placement, %d users over %d machines ==\n",
			ps.Policy, doc.Users, len(doc.Machines))
		fmt.Printf("  %8s %12s %12s %9s %9s %12s\n",
			"rate/s", "fleet p95", "max login", "arrivals", "departs", "censored")
		for i, fr := range ps.Points {
			fmt.Printf("  %8.2f %10.0f ms %10.0f ms %9d %9d %12d\n",
				doc.ChurnRates[i], fr.EchoP95Ms, fr.LoginMaxMs, fr.Arrivals, fr.Departures, fr.Censored)
		}
		fmt.Println()
	}
	if len(doc.Failover) == 0 {
		return
	}
	fmt.Println("== failover: machine kill mid-span ==")
	for _, pf := range doc.Failover {
		printFailover(pf.Policy, pf.Result)
	}
	fmt.Println()
}

func printSchedule(doc benchdoc.ScheduleDoc) {
	for _, pr := range doc.Profiles {
		fmt.Printf("== schedule: %s profile, %d users over %d machines ==\n",
			pr.Profile, doc.Users, len(doc.Machines))
		fmt.Printf("  %-10s %12s %14s %12s %9s %9s %9s\n",
			"policy", "fleet p95", "peak slice", "max login", "arrivals", "departs", "censored")
		for _, pp := range pr.Policies {
			peak := 0.0
			for _, v := range pp.Result.P95TimelineMs {
				if v > peak {
					peak = v
				}
			}
			fmt.Printf("  %-10s %10.0f ms %11.0f ms %10.0f ms %9d %9d %9d\n",
				pp.Policy, pp.Result.EchoP95Ms, peak, pp.Result.LoginMaxMs,
				pp.Result.Arrivals, pp.Result.Departures, pp.Result.Censored)
		}
		fmt.Println()
	}
	if len(doc.Failover) == 0 {
		return
	}
	fmt.Printf("== failover: machine kill at %gs, inside the ramp ==\n", doc.KillAt)
	for _, pf := range doc.Failover {
		printFailover(pf.Profile+"/"+pf.Policy, pf.Result)
	}
	fmt.Println()
}

func printControl(doc benchdoc.ControlDoc) {
	for _, cp := range doc.Profiles {
		fmt.Printf("== control: %s profile, %d offered over %d machines (oracle: %d seats/machine, %s-limited, %d fleet-wide; all %d need %d machines) ==\n",
			cp.Profile, cp.Demand, doc.Machines, cp.OracleSeats, cp.OracleLimit,
			cp.FleetSeats, cp.Demand, cp.MachinesNeeded)
		fmt.Printf("  %-10s %12s %6s %9s %9s %16s %7s %9s %7s\n",
			"run", "fleet p95", "peak", "deferred", "rejected", "queue mean/max", "tiers", "shed", "power")
		rows := []struct {
			label string
			fr    shard.FleetResult
		}{{"open", cp.Open}, {"admission", cp.Admission}, {"controlled", cp.Controlled}, {"autoscale", cp.Autoscale}}
		for _, r := range rows {
			fmt.Printf("  %-10s %10.0f ms %6d %9d %9d %7.0f/%5.0f ms %7d %9d %4d/%-2d\n",
				r.label, r.fr.EchoP95Ms, r.fr.PeakUsers, r.fr.DeferredLogins, r.fr.RejectedLogins,
				r.fr.QueueWaitMeanMs, r.fr.QueueWaitMaxMs, r.fr.TierChanges, r.fr.SheddedFrames,
				r.fr.Activations, r.fr.Drains)
		}
		fmt.Println()
	}
}

func printFailover(label string, fr shard.FleetResult) {
	recovery := "never within the run"
	if fr.RecoveryMs >= 0 {
		recovery = fmt.Sprintf("%.0f ms", fr.RecoveryMs)
	}
	fmt.Printf("  %-20s placed %v, displaced %d: p95 pre %4.0f ms, peak %5.0f ms, recovered in %s\n",
		label, fr.Placement, fr.Shards[fr.KilledShard].Departures,
		fr.PreKillP95Ms, fr.PeakKillP95Ms, recovery)
	fmt.Printf("             timeline (ms):")
	for _, p := range fr.P95TimelineMs {
		fmt.Printf(" %5.0f", p)
	}
	fmt.Println()
}

func printSpeed(doc benchdoc.SpeedDoc) {
	fmt.Printf("== simulator speed: %s queue, workers=%d ==\n", doc.Queue, doc.Workers)
	fmt.Printf("  %-10s %6s %10s %12s %10s %14s %14s\n",
		"workload", "users", "events", "events/sec", "wall ms", "allocs/event", "us/user-hour")
	for _, r := range doc.Workloads {
		fmt.Printf("  %-10s %6d %10d %12.0f %10.2f %14.4f %14.0f\n",
			r.Name, r.Users, r.SimEvents, r.EventsPerSec, r.WallMs, r.AllocsPerEvent, r.UsPerUserHour)
	}
	fmt.Println()
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// experimentDoc projects experiment results into their serializable parts
// (series and notes; tables are terminal renderings).
func experimentDoc(results []*thinbench.Result, seed uint64, quick bool) any {
	type expJSON struct {
		ID     string             `json:"id"`
		Title  string             `json:"title"`
		Series []thinbench.Series `json:"series,omitempty"`
		Notes  []string           `json:"notes,omitempty"`
	}
	out := struct {
		Seed        uint64    `json:"seed"`
		Quick       bool      `json:"quick"`
		Experiments []expJSON `json:"experiments"`
	}{Seed: seed, Quick: quick}
	for _, r := range results {
		out.Experiments = append(out.Experiments, expJSON{ID: r.ID, Title: r.Title, Series: r.Series, Notes: r.Notes})
	}
	return out
}

func writeJSON(path string, doc any) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
