// Command thinbench runs the reproduction's experiments: every table and
// figure of Wong & Seltzer's USENIX 2000 thin-client study, plus the
// ablations this reproduction adds.
//
// Usage:
//
//	thinbench -list                 list experiments
//	thinbench -run fig3             run one experiment
//	thinbench -run all              run everything
//	thinbench -run fig7 -quick      shortened measurement windows
//	thinbench -run fig8 -seed 42    alternate random seed
//	thinbench -run all -parallel 8  run experiments across 8 workers
package main

import (
	"flag"
	"fmt"
	"os"

	"thinbench"
)

func main() {
	var (
		runID    = flag.String("run", "", "experiment ID to run (fig1..fig9, tab1..tab6, abl1..abl4, or 'all')")
		list     = flag.Bool("list", false, "list registered experiments")
		quick    = flag.Bool("quick", false, "shorten measurement windows (same shapes, more noise)")
		seed     = flag.Uint64("seed", 1999, "random seed; identical seeds reproduce identical results")
		parallel = flag.Int("parallel", 0, "worker pool size for -run all (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range thinbench.Experiments() {
			fmt.Printf("  %-5s %s\n        paper: %s\n", e.ID, e.Title, e.Paper)
		}
		if *runID == "" && !*list {
			fmt.Println("\nrun one with: thinbench -run <id>   (or -run all)")
		}
		return
	}

	cfg := thinbench.Config{Seed: *seed, Quick: *quick}
	if *parallel != 0 && *runID != "all" {
		fmt.Fprintln(os.Stderr, "note: -parallel applies to -run all; single experiments run on one worker")
	}
	if *runID == "all" {
		results, err := thinbench.RunAllParallel(cfg, *parallel)
		for _, r := range results {
			fmt.Println(r.Render())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	r, err := thinbench.Run(*runID, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println(r.Render())
}
