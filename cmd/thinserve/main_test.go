package main

import (
	"net"
	"testing"
)

// TestEndToEndOverLoopback runs a full session — server streaming a
// workload's display channel, client applying it and answering with input —
// over a real TCP connection, for each protocol.
func TestEndToEndOverLoopback(t *testing.T) {
	for _, prot := range []string{"rdp", "x", "lbx", "vnc", "slim"} {
		prot := prot
		t.Run(prot, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			errc := make(chan error, 1)
			go func() { errc <- serveListener(ln, prot, "animation", 3) }()
			if err := view(ln.Addr().String(), prot); err != nil {
				t.Fatalf("client: %v", err)
			}
			if err := <-errc; err != nil {
				t.Fatalf("server: %v", err)
			}
		})
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	if _, err := newServer("spice"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := newClient("spice"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := buildTrace("quake", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
