package main

import (
	"net"
	"testing"
)

// TestEndToEndOverLoopback runs a full session — server streaming a
// workload's display channel, client applying it and answering with input —
// over a real TCP connection, for each protocol.
func TestEndToEndOverLoopback(t *testing.T) {
	for _, prot := range []string{"rdp", "x", "lbx", "vnc", "slim"} {
		prot := prot
		t.Run(prot, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			errc := make(chan error, 1)
			go func() { errc <- serveListener(ln, prot, "animation", 3, 1, 1999) }()
			if err := view(ln.Addr().String(), prot, 1); err != nil {
				t.Fatalf("client: %v", err)
			}
			if err := <-errc; err != nil {
				t.Fatalf("server: %v", err)
			}
		})
	}
}

// TestConcurrentSessionsOverLoopback multiplexes many concurrent client
// sessions against one server process over real TCP connections — the
// farm end-to-end: every session has its own codec state, workload trace
// (seed-derived, so streams differ), and socket.
func TestConcurrentSessionsOverLoopback(t *testing.T) {
	const sessions = 8
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errc := make(chan error, 1)
	go func() { errc <- serveListener(ln, "rdp", "animation", 2, sessions, 7) }()
	if err := view(ln.Addr().String(), "rdp", sessions); err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	if _, err := newServer("spice"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := newClient("spice"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := buildTrace("quake", 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	// Bad inputs must fail before any client is accepted.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := serveListener(ln, "spice", "animation", 1, 1, 1); err == nil {
		t.Fatal("serveListener accepted unknown protocol")
	}
	if err := serveListener(ln, "rdp", "quake", 1, 1, 1); err == nil {
		t.Fatal("serveListener accepted unknown workload")
	}
	if err := view("127.0.0.1:0", "spice", 1); err == nil {
		t.Fatal("view accepted unknown protocol")
	}
}
