// Command thinserve demonstrates the remote display protocols over real
// TCP connections: a server process encodes workload display streams and
// ships them through the proto framing layer; a client process connects,
// decodes into its framebuffer, sends input back, and verifies the
// session.
//
// With -sessions N both sides multiplex N concurrent sessions — each with
// its own protocol codec state, workload trace, and TCP connection —
// across the internal/farm worker pool, exercising the paper's
// multi-user question ("how many concurrent users can this server
// support?") against real sockets.
//
// Server:  thinserve -listen :9000 -proto rdp -workload webpage -span 10 -sessions 8
// Client:  thinserve -connect localhost:9000 -proto rdp -sessions 8
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"thinbench/internal/display"
	"thinbench/internal/farm"
	"thinbench/internal/proto"
	"thinbench/internal/proto/protos"
	"thinbench/internal/simclock"
	"thinbench/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", "", "serve on this address (server mode)")
		connect  = flag.String("connect", "", "connect to this address (client mode)")
		prot     = flag.String("proto", "rdp", "protocol: rdp, x, lbx, vnc, slim")
		wl       = flag.String("workload", "webpage", "workload: office, webpage, animation")
		span     = flag.Int("span", 10, "workload span in seconds")
		sessions = flag.Int("sessions", 1, "concurrent sessions to serve or open")
		seed     = flag.Uint64("seed", 1999, "root seed; per-session workloads derive from it")
	)
	flag.Parse()

	switch {
	case *listen != "":
		if err := serve(*listen, *prot, *wl, *span, *sessions, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case *connect != "":
		if err := view(*connect, *prot, *sessions); err != nil {
			fmt.Fprintln(os.Stderr, "view:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// newServer and newClient take one endpoint of the registry's pair; the
// peer endpoint lives in the other process, so the discarded half is
// garbage immediately (cheap relative to a TCP session's lifetime).
func newServer(prot string) (proto.Server, error) {
	s, _, _, err := protos.New(prot)
	return s, err
}

func newClient(prot string) (proto.Client, error) {
	_, c, _, err := protos.New(prot)
	return c, err
}

// buildTrace composes one session's workload. The seed varies per-session
// content (animation frames, office interleavings) so concurrent sessions
// are independent streams, not N copies of one.
func buildTrace(wl string, spanSec int, seed uint64) (workload.Trace, error) {
	span := simclock.Duration(spanSec) * simclock.Second
	switch wl {
	case "office":
		cfg := workload.DefaultOfficeConfig()
		cfg.Seed = seed
		cfg.TypingChars = 200
		cfg.PaintStrokes = 10
		cfg.PanelActions = 4
		cfg.ReviewScrolls = 20
		return workload.OfficeTrace(cfg), nil
	case "webpage":
		cfg := workload.DefaultWebPageConfig()
		cfg.Span = span
		return workload.WebPageTrace(cfg), nil
	case "animation":
		return workload.AnimationTrace(workload.AnimationConfig{
			Seed: seed, Frames: 10, FPS: 20, W: 150, H: 115, X: 100, Y: 100,
			Span: span, Photo: true,
		}), nil
	}
	return workload.Trace{}, fmt.Errorf("unknown workload %q", wl)
}

// serveStats is one served session's outcome.
type serveStats struct {
	sent, bytes, events int
}

// serve accepts the configured number of clients and streams to all of
// them concurrently.
func serve(addr, prot, wl string, span, sessions int, seed uint64) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	return serveListener(ln, prot, wl, span, sessions, seed)
}

// serveListener runs the configured sessions on an existing listener:
// accept one connection per session, then serve every session at once
// across the farm, each with its own protocol encoder and workload trace.
func serveListener(ln net.Listener, prot, wl string, span, sessions int, seed uint64) error {
	if sessions < 1 {
		sessions = 1
	}
	// Validate protocol and workload before accepting anyone.
	if _, err := newServer(prot); err != nil {
		return err
	}
	if _, err := buildTrace(wl, span, seed); err != nil {
		return err
	}
	fmt.Printf("thinserve: %s workload, proto %s, %d session(s) on %s\n", wl, prot, sessions, ln.Addr())

	conns := make([]net.Conn, 0, sessions)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for len(conns) < sessions {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		conns = append(conns, conn)
	}

	total := serveStats{}
	err := farm.Aggregate(farm.Config{Sessions: sessions, Workers: sessions, Seed: seed},
		func(s *farm.Session) (serveStats, error) {
			return serveSession(conns[s.Index], prot, wl, span, s.Seed)
		},
		func(i int, st serveStats) {
			fmt.Printf("thinserve: session %d: sent %d messages, %d bytes, %d input events\n",
				i, st.sent, st.bytes, st.events)
			total.sent += st.sent
			total.bytes += st.bytes
			total.events += st.events
		})
	if err != nil {
		return err
	}
	fmt.Printf("thinserve: total %d sessions, %d messages, %d bytes, %d input events\n",
		sessions, total.sent, total.bytes, total.events)
	return nil
}

// serveSession streams one workload over one connection and reads back the
// client's input report.
func serveSession(conn net.Conn, prot, wl string, span int, seed uint64) (serveStats, error) {
	srv, err := newServer(prot)
	if err != nil {
		return serveStats{}, err
	}
	tr, err := buildTrace(wl, span, seed)
	if err != nil {
		return serveStats{}, err
	}
	st := serveStats{}
	ts, _ := srv.(proto.TapeServer)
	var sc proto.Scratch
	var opsBuf []display.Op
	for _, batch := range tr.Display {
		var msgs []proto.Message
		if ts != nil {
			msgs = ts.UpdateTape(batch.Tape, batch.From, batch.To, &sc)
		} else {
			opsBuf = batch.Tape.AppendTo(opsBuf[:0], batch.From, batch.To)
			msgs = srv.Update(opsBuf)
		}
		for _, m := range msgs {
			if err := proto.WriteMessage(conn, m); err != nil {
				return st, fmt.Errorf("write: %w", err)
			}
			st.sent++
			st.bytes += m.Size()
		}
	}
	// End-of-stream marker.
	if err := proto.WriteMessage(conn, proto.Message{Channel: proto.Display, Kind: "EOF"}); err != nil {
		return st, err
	}

	// Read the client's input report.
	m, err := proto.ReadMessage(conn)
	if err != nil {
		return st, fmt.Errorf("final input read: %w", err)
	}
	events, err := srv.DecodeInput(m)
	if err != nil {
		return st, fmt.Errorf("input decode: %w", err)
	}
	st.events = len(events)
	return st, nil
}

// viewStats is one client session's outcome.
type viewStats struct {
	applied int
	ops     int64
	hash    uint64
}

// view opens the configured number of concurrent client sessions, each
// applying its own display stream and answering with input.
func view(addr, prot string, sessions int) error {
	if sessions < 1 {
		sessions = 1
	}
	if _, err := newClient(prot); err != nil {
		return err
	}
	applied := 0
	err := farm.Aggregate(farm.Config{Sessions: sessions, Workers: sessions},
		func(s *farm.Session) (viewStats, error) {
			return viewSession(addr, prot)
		},
		func(i int, st viewStats) {
			fmt.Printf("thinview: session %d: applied %d messages, %d ops rendered, hash %x\n",
				i, st.applied, st.ops, st.hash)
			applied += st.applied
		})
	if err != nil {
		return err
	}
	fmt.Printf("thinview: total %d sessions, %d messages applied\n", sessions, applied)
	return nil
}

// viewSession connects, applies the display stream, and sends a burst of
// input.
func viewSession(addr, prot string) (viewStats, error) {
	cli, err := newClient(prot)
	if err != nil {
		return viewStats{}, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return viewStats{}, err
	}
	defer conn.Close()

	st := viewStats{}
	for {
		m, err := proto.ReadMessage(conn)
		if err != nil {
			return st, fmt.Errorf("read: %w", err)
		}
		if m.Kind == "EOF" {
			break
		}
		if err := cli.Apply(m); err != nil {
			return st, fmt.Errorf("apply: %w", err)
		}
		st.applied++
	}
	fb := cli.Framebuffer()
	st.ops = fb.Ops()
	st.hash = fb.Hash()

	// Send a keystroke + click so the server exercises input decoding.
	events := []display.InputEvent{
		display.KeyEvent{Down: true, Code: 28},
		display.KeyEvent{Down: false, Code: 28},
		display.MouseMove{X: 400, Y: 300},
		display.MouseButton{Down: true, Button: 1},
		display.MouseButton{Down: false, Button: 1},
	}
	for _, m := range cli.EncodeInput(events) {
		if err := proto.WriteMessage(conn, m); err != nil {
			return st, fmt.Errorf("input write: %w", err)
		}
	}
	return st, nil
}
