// Command thinserve demonstrates the remote display protocols over a real
// TCP connection: a server process encodes a workload's display stream and
// ships it through the proto framing layer; a client process connects,
// decodes into its framebuffer, sends input back, and verifies the session.
//
// Server:  thinserve -listen :9000 -proto rdp -workload webpage -span 10
// Client:  thinserve -connect localhost:9000 -proto rdp
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/slim"
	"thinbench/internal/proto/vnc"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/simclock"
	"thinbench/internal/workload"
)

func main() {
	var (
		listen  = flag.String("listen", "", "serve on this address (server mode)")
		connect = flag.String("connect", "", "connect to this address (client mode)")
		prot    = flag.String("proto", "rdp", "protocol: rdp, x, lbx, vnc, slim")
		wl      = flag.String("workload", "webpage", "workload: office, webpage, animation")
		span    = flag.Int("span", 10, "workload span in seconds")
	)
	flag.Parse()

	switch {
	case *listen != "":
		if err := serve(*listen, *prot, *wl, *span); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case *connect != "":
		if err := view(*connect, *prot); err != nil {
			fmt.Fprintln(os.Stderr, "view:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func newServer(prot string) (proto.Server, error) {
	switch prot {
	case "rdp":
		return rdp.NewServer(rdp.DefaultConfig()), nil
	case "x":
		return xwire.NewServer(), nil
	case "lbx":
		return lbx.NewServer(lbx.DefaultConfig()), nil
	case "vnc":
		return vnc.NewServer(vnc.DefaultConfig()), nil
	case "slim":
		return slim.NewServer(slim.DefaultConfig()), nil
	}
	return nil, fmt.Errorf("unknown protocol %q", prot)
}

func newClient(prot string) (proto.Client, error) {
	switch prot {
	case "rdp":
		return rdp.NewClient(rdp.DefaultConfig()), nil
	case "x":
		return xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH), nil
	case "lbx":
		return lbx.NewClient(lbx.DefaultConfig()), nil
	case "vnc":
		return vnc.NewClient(vnc.DefaultConfig()), nil
	case "slim":
		return slim.NewClient(slim.DefaultConfig()), nil
	}
	return nil, fmt.Errorf("unknown protocol %q", prot)
}

func buildTrace(wl string, spanSec int) (workload.Trace, error) {
	span := simclock.Duration(spanSec) * simclock.Second
	switch wl {
	case "office":
		cfg := workload.DefaultOfficeConfig()
		cfg.TypingChars = 200
		cfg.PaintStrokes = 10
		cfg.PanelActions = 4
		cfg.ReviewScrolls = 20
		return workload.OfficeTrace(cfg), nil
	case "webpage":
		cfg := workload.DefaultWebPageConfig()
		cfg.Span = span
		return workload.WebPageTrace(cfg), nil
	case "animation":
		return workload.AnimationTrace(workload.AnimationConfig{
			Seed: 7, Frames: 10, FPS: 20, W: 150, H: 115, X: 100, Y: 100,
			Span: span, Photo: true,
		}), nil
	}
	return workload.Trace{}, fmt.Errorf("unknown workload %q", wl)
}

// serve accepts one client, streams the workload's display channel to it,
// and echoes decoded input event counts.
func serve(addr, prot, wl string, span int) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	return serveListener(ln, prot, wl, span)
}

// serveListener runs one session on an existing listener.
func serveListener(ln net.Listener, prot, wl string, span int) error {
	srv, err := newServer(prot)
	if err != nil {
		return err
	}
	tr, err := buildTrace(wl, span)
	if err != nil {
		return err
	}
	fmt.Printf("thinserve: %s workload over %s on %s\n", wl, srv.Name(), ln.Addr())
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()

	sent, bytes := 0, 0
	for _, batch := range tr.Display {
		for _, m := range srv.Update(batch.Ops) {
			if err := proto.WriteMessage(conn, m); err != nil {
				return fmt.Errorf("write: %w", err)
			}
			sent++
			bytes += m.Size()
		}
	}
	// End-of-stream marker.
	if err := proto.WriteMessage(conn, proto.Message{Channel: proto.Display, Kind: "EOF"}); err != nil {
		return err
	}
	fmt.Printf("thinserve: sent %d messages, %d bytes\n", sent, bytes)

	// Read the client's input report.
	m, err := proto.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("final input read: %w", err)
	}
	events, err := srv.DecodeInput(m)
	if err != nil {
		return fmt.Errorf("input decode: %w", err)
	}
	fmt.Printf("thinserve: decoded %d input events from client\n", len(events))
	return nil
}

// view connects, applies the display stream, and sends a burst of input.
func view(addr, prot string) error {
	cli, err := newClient(prot)
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	applied := 0
	for {
		m, err := proto.ReadMessage(conn)
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		if m.Kind == "EOF" {
			break
		}
		if err := cli.Apply(m); err != nil {
			return fmt.Errorf("apply: %w", err)
		}
		applied++
	}
	fb := cli.Framebuffer()
	fmt.Printf("thinview: applied %d messages; screen %dx%d, %d ops rendered, hash %x\n",
		applied, fb.W, fb.H, fb.Ops(), fb.Hash())

	// Send a keystroke + click so the server exercises input decoding.
	events := []display.InputEvent{
		display.KeyEvent{Down: true, Code: 28},
		display.KeyEvent{Down: false, Code: 28},
		display.MouseMove{X: 400, Y: 300},
		display.MouseButton{Down: true, Button: 1},
		display.MouseButton{Down: false, Button: 1},
	}
	for _, m := range cli.EncodeInput(events) {
		if err := proto.WriteMessage(conn, m); err != nil {
			return fmt.Errorf("input write: %w", err)
		}
	}
	return nil
}
