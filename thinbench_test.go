package thinbench_test

import (
	"errors"
	"strings"
	"testing"

	"thinbench"
)

func TestPublicRegistry(t *testing.T) {
	exps := thinbench.Experiments()
	if len(exps) != 28 {
		t.Fatalf("%d experiments registered, want 28 (9 figures, 6 tables, 5 ablations, capacity, contention, sharding, churn, failover, office day, login storm, admission control)", len(exps))
	}
	if _, ok := thinbench.Lookup("fig3"); !ok {
		t.Fatal("fig3 not found via facade")
	}
}

func TestPublicRun(t *testing.T) {
	r, err := thinbench.Run("tab4", thinbench.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "45,328") {
		t.Fatal("tab4 render missing TSE setup bytes")
	}
}

func TestPublicRunUnknown(t *testing.T) {
	_, err := thinbench.Run("nope", thinbench.QuickConfig())
	if err == nil {
		t.Fatal("unknown experiment did not error")
	}
	var unk *thinbench.UnknownExperimentError
	if !errors.As(err, &unk) || unk.ID != "nope" {
		t.Fatalf("error = %v, want UnknownExperimentError{nope}", err)
	}
}

func TestPerceptionThreshold(t *testing.T) {
	if thinbench.PerceptionThreshold != 100*thinbench.Millisecond {
		t.Fatal("facade perception threshold diverges from the paper's 100ms")
	}
}

func TestPublicRunAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run in -short mode")
	}
	results, err := thinbench.RunAllParallel(thinbench.QuickConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(thinbench.Experiments()) {
		t.Fatalf("parallel run returned %d results for %d experiments",
			len(results), len(thinbench.Experiments()))
	}
	for i, r := range results[1:] {
		if r.ID <= results[i].ID {
			t.Fatalf("results out of ID order: %s before %s", results[i].ID, r.ID)
		}
	}
}
